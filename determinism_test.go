// Parallel-vs-serial determinism: the parallel DP driver must be an exact
// drop-in for the serial enumerator. Generation order may differ across
// workers, but commits replay in the canonical enumeration order, so every
// observable outcome — enumeration statistics, per-method generated-plan
// counts (the paper's target quantity), retained plan counts, the chosen
// plan and its cost — must be bit-identical. This test sweeps every built-in
// workload (serial and 4-node parallel costing) across the DP levels and
// several parallelism degrees and compares each parallel run against the
// serial baseline. Run under -race it doubles as the data-race gate for the
// generate/commit split.
package cote_test

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"cote/internal/core"
	"cote/internal/cost"
	"cote/internal/experiments"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/workload"
)

// fingerprint captures everything a compile produces that must not depend on
// the parallelism degree. Wall-clock fields are deliberately excluded.
type fingerprint struct {
	planString string
	cost       float64
	rows       float64
	blocks     string // per-block enum stats, plan counts, memo sizes
}

func fingerprintOf(res *opt.Result) fingerprint {
	blocks := ""
	for _, b := range res.Blocks {
		blocks += fmt.Sprintf("[%s: joins=%d pairs=%d entries=%d gen=%v access=%d enforcer=%d pilot=%d memoplans=%d memoentries=%d]",
			b.Block.Name, b.EnumStats.Joins, b.EnumStats.Pairs, b.EnumStats.Entries,
			b.Counters.Generated, b.Counters.AccessPlans, b.Counters.EnforcerPlans,
			b.Counters.PilotPruned, b.Memo.NumPlans(), b.Memo.NumEntries())
	}
	return fingerprint{
		planString: res.Plan.String(),
		cost:       res.Plan.Cost,
		rows:       res.Plan.Card,
		blocks:     blocks,
	}
}

// determinismWorkloads pairs each built-in workload with serial and 4-node
// parallel costing — partition properties multiply the plan space, so the
// parallel-cost variants are the harder determinism target.
type namedWorkload struct {
	name string
	wl   *workload.Workload
	cfg  *cost.Config
}

func determinismWorkloads() []namedWorkload {
	return []namedWorkload{
		{"linear_s", workload.Linear(1), cost.Serial},
		{"linear_p", workload.Linear(4), cost.Parallel4},
		{"star_s", workload.Star(1), cost.Serial},
		{"star_p", workload.Star(4), cost.Parallel4},
		{"random_s", workload.Random(42, 12, 10, 1), cost.Serial},
		{"random_p", workload.Random(42, 12, 10, 4), cost.Parallel4},
		{"real1_s", workload.Real1(1), cost.Serial},
		{"real1_p", workload.Real1(4), cost.Parallel4},
		{"real2_s", workload.Real2(1), cost.Serial},
		{"real2_p", workload.Real2(4), cost.Parallel4},
		{"tpch_s", workload.TPCH(1), cost.Serial},
		{"tpch_p", workload.TPCH(4), cost.Parallel4},
	}
}

func TestParallelOptimizeMatchesSerial(t *testing.T) {
	degrees := []int{2, runtime.GOMAXPROCS(0)}
	if degrees[1] <= 2 {
		// Single- or dual-core machine: still exercise a wider fan-out so
		// the worker claiming/replay logic sees more than two segments.
		degrees[1] = 4
	}
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2}
	stride := 1
	if testing.Short() {
		// Subsample for -short (and keep -race CI runs tractable): one
		// degree, the two extreme levels, every third query.
		degrees = degrees[1:]
		levels = []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2}
		stride = 3
	}

	for _, nw := range determinismWorkloads() {
		name, cfg := nw.name, nw.cfg
		for qi, q := range nw.wl.Queries {
			if qi%stride != 0 {
				continue
			}
			qlevels := levels
			if q.Block.NumTables() <= 7 && !testing.Short() {
				// Unrestricted bushy DP is exponential in entries; confine it
				// to the small queries where it stays cheap.
				qlevels = append(append([]opt.Level(nil), levels...), opt.LevelHigh)
			}
			for _, level := range qlevels {
				serialRes, err := opt.Optimize(q.Block, opt.Options{Level: level, Config: cfg})
				if err != nil {
					t.Fatalf("%s/%s level=%v serial: %v", name, q.Name, level, err)
				}
				want := fingerprintOf(serialRes)
				for _, p := range degrees {
					res, err := opt.Optimize(q.Block, opt.Options{Level: level, Config: cfg, Parallelism: p})
					if err != nil {
						t.Fatalf("%s/%s level=%v parallelism=%d: %v", name, q.Name, level, p, err)
					}
					got := fingerprintOf(res)
					if got != want {
						t.Errorf("%s/%s level=%v parallelism=%d diverges from serial:\n got %+v\nwant %+v",
							name, q.Name, level, p, got, want)
					}
				}
			}
		}
	}
}

// estimateFingerprint renders everything an estimation produces that must
// not depend on the parallelism degree: the full wire JSON (plan counts,
// join totals, candidate-scan stats, MeasuredPeakBytes) with the wall-clock
// field zeroed, plus the per-block structural summaries the JSON only
// totals.
func estimateFingerprint(t *testing.T, est *core.Estimate) string {
	t.Helper()
	est.Elapsed = 0
	b, err := json.Marshal(est)
	if err != nil {
		t.Fatal(err)
	}
	out := string(b)
	for _, be := range est.Blocks {
		out += fmt.Sprintf("[%s: counts=%v stats=%+v entries=%d propbytes=%d measured=%d]",
			be.Block.Name, be.Counts, be.EnumStats, be.Entries, be.PropertyBytes, be.MeasuredBytes)
	}
	return out
}

// TestParallelEstimateMatchesSerial is the estimate-path counterpart of the
// optimize sweep above: the parallel counting pass (worker-local counting,
// canonical-order propagation replay) must produce byte-identical Estimate
// JSON — including MeasuredPeakBytes and the enum-scan statistics — at every
// workload × level × degree. Under -race it doubles as the data-race gate
// for the counting split.
func TestParallelEstimateMatchesSerial(t *testing.T) {
	degrees := []int{2, runtime.GOMAXPROCS(0)}
	if degrees[1] <= 2 {
		degrees[1] = 4
	}
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2}
	stride := 1
	if testing.Short() {
		degrees = degrees[1:]
		levels = []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2}
		stride = 3
	}

	workloads := append(determinismWorkloads(),
		// The clique workload is the densest enumeration (every pair joined)
		// — the regime the parallel pass targets, so it must hold the same
		// bit-identity guarantee.
		namedWorkload{"clique_s", workload.Clique(1), cost.Serial},
		namedWorkload{"clique_p", workload.Clique(4), cost.Parallel4},
	)
	for _, nw := range workloads {
		name, cfg := nw.name, nw.cfg
		for qi, q := range nw.wl.Queries {
			if qi%stride != 0 {
				continue
			}
			qlevels := levels
			if q.Block.NumTables() <= 7 && !testing.Short() {
				qlevels = append(append([]opt.Level(nil), levels...), opt.LevelHigh)
			}
			for _, level := range qlevels {
				base := core.Options{Level: level, Config: cfg}
				serialEst, err := core.EstimatePlans(q.Block, base)
				if err != nil {
					t.Fatalf("%s/%s level=%v serial: %v", name, q.Name, level, err)
				}
				want := estimateFingerprint(t, serialEst)
				for _, p := range degrees {
					popts := base
					popts.Parallelism = p
					est, err := core.EstimatePlans(q.Block, popts)
					if err != nil {
						t.Fatalf("%s/%s level=%v parallelism=%d: %v", name, q.Name, level, p, err)
					}
					if got := estimateFingerprint(t, est); got != want {
						t.Errorf("%s/%s level=%v parallelism=%d estimate diverges from serial:\n got %s\nwant %s",
							name, q.Name, level, p, got, want)
					}
				}
			}
		}
	}
}

// TestParallelEstimateLevelsMatchesSerial pins the piggyback pass: one
// parallel enumeration shared by per-level counting lanes must reproduce
// the serial multi-level counts and join totals exactly.
func TestParallelEstimateLevelsMatchesSerial(t *testing.T) {
	stride := 1
	if testing.Short() {
		stride = 3
	}
	for _, nw := range determinismWorkloads() {
		for qi, q := range nw.wl.Queries {
			if qi%stride != 0 {
				continue
			}
			// HighInner2 subsumes only itself and left-deep; the full level
			// set needs the unrestricted-bushy top, which is only affordable
			// on the small queries.
			top := opt.LevelHighInner2
			levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2}
			if q.Block.NumTables() <= 7 && !testing.Short() {
				top = opt.LevelHigh
				levels = []opt.Level{opt.LevelMediumLeftDeep, opt.LevelMediumZigZag, opt.LevelHighInner2, opt.LevelHigh}
			}
			base := core.Options{Config: nw.cfg}
			serial, err := core.EstimateLevels(q.Block, top, levels, base)
			if err != nil {
				t.Fatalf("%s/%s serial: %v", nw.name, q.Name, err)
			}
			popts := base
			popts.Parallelism = 4
			par, err := core.EstimateLevels(q.Block, top, levels, popts)
			if err != nil {
				t.Fatalf("%s/%s parallel: %v", nw.name, q.Name, err)
			}
			for _, l := range levels {
				if serial.Counts[l] != par.Counts[l] || serial.Joins[l] != par.Joins[l] {
					t.Errorf("%s/%s level=%v piggyback diverges: serial %v/%d joins, parallel %v/%d joins",
						nw.name, q.Name, l, serial.Counts[l], serial.Joins[l], par.Counts[l], par.Joins[l])
				}
			}
		}
	}
}

// TestParallelPilotPassMatchesSerial covers the order-sensitive pilot-bound
// path: the bound's "never prune the only plan" and dominated-anyway
// accounting read the partially built plan list, so they only stay identical
// because commits replay in canonical order.
func TestParallelPilotPassMatchesSerial(t *testing.T) {
	wl := workload.Real1(1)
	for _, q := range wl.Queries {
		base := opt.Options{Level: experiments.Level, Config: cost.Serial, PilotPass: true}
		serialRes, err := opt.Optimize(q.Block, base)
		if err != nil {
			t.Fatalf("%s serial: %v", q.Name, err)
		}
		want := fingerprintOf(serialRes)
		par := base
		par.Parallelism = 4
		res, err := opt.Optimize(q.Block, par)
		if err != nil {
			t.Fatalf("%s parallel: %v", q.Name, err)
		}
		if got := fingerprintOf(res); got != want {
			t.Errorf("%s pilot-pass parallel diverges:\n got %+v\nwant %+v", q.Name, got, want)
		}
	}
}

// TestParallelCountersSumExactly pins the counter-merge contract: per-method
// generated counts are the estimator's ground truth (Figure 5), so worker
// merging must not lose or double-count a single plan.
func TestParallelCountersSumExactly(t *testing.T) {
	wl := workload.Real2(4)
	q := wl.Queries[7] // the 14-table, 3-view query
	serialRes, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level, Config: cost.Parallel4})
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level, Config: cost.Parallel4, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	sc, pc := serialRes.TotalCounters(), parRes.TotalCounters()
	for m := 0; m < int(props.NumJoinMethods); m++ {
		if sc.Generated[m] != pc.Generated[m] {
			t.Errorf("method %d: serial generated %d, parallel %d", m, sc.Generated[m], pc.Generated[m])
		}
	}
	if sc.AccessPlans != pc.AccessPlans || sc.EnforcerPlans != pc.EnforcerPlans || sc.PilotPruned != pc.PilotPruned {
		t.Errorf("auxiliary counts diverge: serial %+v parallel %+v", sc, pc)
	}
}
