package cote_test

import (
	"testing"

	"cote"
)

// TestPublicAPIEndToEnd walks the full public surface: build a catalog,
// parse SQL, optimize, estimate, calibrate, predict, meta-optimize.
func TestPublicAPIEndToEnd(t *testing.T) {
	cat := cote.TPCHCatalog(1, 1)
	q, err := cote.ParseSQL(`
		SELECT n_name, SUM(l_extendedprice)
		FROM customer, orders, lineitem, supplier, nation, region
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		  AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		  AND r_name = 'ASIA'
		GROUP BY n_name
		ORDER BY n_name`, cat)
	if err != nil {
		t.Fatal(err)
	}

	res, err := cote.Optimize(q, cote.OptimizeOptions{Level: cote.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}

	est, err := cote.EstimatePlans(q, cote.EstimateOptions{Level: cote.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	actual := cote.ActualPlanCounts(res)
	if est.Counts.Total() == 0 || actual.Total() == 0 {
		t.Fatal("zero counts")
	}
	if est.Elapsed >= res.Elapsed {
		t.Fatalf("estimation (%v) not faster than optimization (%v)", est.Elapsed, res.Elapsed)
	}

	// Calibrate a model on the star workload and predict this query.
	var training []cote.TrainingPoint
	for _, wq := range cote.StarWorkload(1).Queries {
		r, err := cote.Optimize(wq.Block, cote.OptimizeOptions{Level: cote.LevelHigh})
		if err != nil {
			t.Fatal(err)
		}
		training = append(training, cote.TrainingPoint{
			Counts: cote.ActualPlanCounts(r), Actual: r.Elapsed,
		})
	}
	model, err := cote.Calibrate(training)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := cote.EstimatePlans(q, cote.EstimateOptions{Level: cote.LevelHigh, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if est2.PredictedTime <= 0 {
		t.Fatal("no time prediction")
	}

	// Meta-optimizer runs end to end.
	mop := &cote.MetaOptimizer{Model: model}
	_, dec, err := mop.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TotalElapsed <= 0 {
		t.Fatal("no MOP decision record")
	}
}

func TestPublicParallelAndBaseline(t *testing.T) {
	q := cote.MustParseSQL(
		`SELECT s_amount FROM sales, store, product
		 WHERE s_store_id = st_id AND s_prod_id = p_id`,
		cote.Warehouse1Catalog(4))
	est, err := cote.EstimatePlans(q, cote.EstimateOptions{Config: cote.Parallel4})
	if err != nil {
		t.Fatal(err)
	}
	if est.Counts.ByMethod[cote.HSJN] == 0 {
		t.Fatal("no hash-join plans estimated")
	}
	jc, err := cote.CountJoins(q, cote.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if jc.Pairs == 0 {
		t.Fatal("no joins counted")
	}
	if n, err := cote.ClosedFormJoins("linear", 5); err != nil || n != 20 {
		t.Fatalf("closed form = %d, %v", n, err)
	}
	multi, err := cote.EstimateLevels(q, cote.LevelHigh,
		[]cote.Level{cote.LevelMediumLeftDeep, cote.LevelHigh}, cote.EstimateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Counts[cote.LevelHigh].Total() < multi.Counts[cote.LevelMediumLeftDeep].Total() {
		t.Fatal("bushy level estimated fewer plans than left-deep")
	}
}

func TestPublicExtensions(t *testing.T) {
	cat := cote.TPCHCatalog(1, 1)
	// FETCH FIRST through the public surface.
	q := cote.MustParseSQL(`SELECT o_orderkey FROM orders, lineitem
		WHERE o_orderkey = l_orderkey FETCH FIRST 10 ROWS ONLY`, cat)
	res, err := cote.Optimize(q, cote.OptimizeOptions{Level: cote.LevelHigh})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.Pipelined {
		t.Fatal("FETCH FIRST plan not pipelined")
	}
	// Statement cache.
	c := cote.NewStatementCache()
	c.Record(q, res.Elapsed)
	if _, ok := c.Lookup(q); !ok {
		t.Fatal("statement cache missed an exact repeat")
	}
}

func TestPublicWorkloadConstructors(t *testing.T) {
	for _, w := range []*cote.Workload{
		cote.LinearWorkload(1), cote.StarWorkload(4),
		cote.RandomWorkload(1, 4, 8, 1),
		cote.Real1Workload(1), cote.Real2Workload(1), cote.TPCHWorkload(4),
	} {
		if len(w.Queries) == 0 || w.Catalog == nil {
			t.Fatalf("workload %s malformed", w.Name)
		}
	}
}
