//go:build race

package cote_test

// raceEnabled reports whether the race detector is active. Under -race,
// sync.Pool deliberately drops a fraction of Puts, so alloc-count guards
// (which depend on pool steady state) are skipped there; the race builds
// still run every correctness and determinism test.
const raceEnabled = true
