module cote

go 1.22
