package cote_test

import (
	"fmt"

	"cote"
)

// ExampleEstimatePlans shows the core flow: parse, optimize, estimate, and
// compare the estimator's plan counts with the optimizer's actuals. Plan
// counts are deterministic, unlike wall times.
func ExampleEstimatePlans() {
	cat := cote.TPCHCatalog(1, 1)
	q := cote.MustParseSQL(`
		SELECT c_name, o_totalprice
		FROM customer, orders, lineitem
		WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
		ORDER BY c_name`, cat)

	res, err := cote.Optimize(q, cote.OptimizeOptions{Level: cote.LevelHigh})
	if err != nil {
		panic(err)
	}
	est, err := cote.EstimatePlans(q, cote.EstimateOptions{Level: cote.LevelHigh})
	if err != nil {
		panic(err)
	}

	actual := cote.ActualPlanCounts(res)
	fmt.Printf("joins enumerated: %d\n", est.Joins)
	fmt.Printf("HSJN plans: estimated %d, actual %d\n",
		est.Counts.ByMethod[cote.HSJN], actual.ByMethod[cote.HSJN])
	// Output:
	// joins enumerated: 8
	// HSJN plans: estimated 8, actual 8
}

// ExampleClosedFormJoins reproduces the closed-form join counts of Ono &
// Lohman that the paper cites: (n^3-n)/6 for linear queries, (n-1)*2^(n-2)
// for stars — and the absence of a formula for general (cyclic) graphs,
// which is the reason the estimator reuses the enumerator instead.
func ExampleClosedFormJoins() {
	linear, _ := cote.ClosedFormJoins("linear", 10)
	star, _ := cote.ClosedFormJoins("star", 10)
	_, err := cote.ClosedFormJoins("cyclic", 10)
	fmt.Println(linear, star, err != nil)
	// Output:
	// 165 2304 true
}

// ExampleCountJoins shows the prior-art baseline metric on a query whose
// join graph contains a cycle (customer and supplier share a nation) —
// countable here only because the enumerator does the counting.
func ExampleCountJoins() {
	cat := cote.TPCHCatalog(1, 1)
	q := cote.MustParseSQL(`
		SELECT n_name
		FROM customer, orders, lineitem, supplier, nation
		WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
		  AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey
		  AND s_nationkey = n_nationkey`, cat)
	jc, err := cote.CountJoins(q, cote.EstimateOptions{Level: cote.LevelHigh})
	if err != nil {
		panic(err)
	}
	fmt.Println(jc.Pairs)
	// Output:
	// 51
}
