// Package cote is a reproduction, as a standalone Go library, of
// "Estimating Compilation Time of a Query Optimizer" (Ilyas, Rao, Lohman,
// Gao, Lin — SIGMOD 2003).
//
// The library contains a complete System-R-style cost-based query optimizer
// (bottom-up dynamic programming over a MEMO structure, interesting orders,
// three join methods, a serial and a shared-nothing parallel version) and,
// on top of it, the paper's contribution: a COmpilation Time Estimator
// (COTE) that predicts how long the optimizer will take on a query before
// running it, by reusing the join enumerator, bypassing plan generation,
// and counting the join plans each enumerated join would generate from
// per-MEMO-entry interesting-property lists.
//
// # Quick start
//
//	cat := cote.TPCHCatalog(1, 1)
//	q, err := cote.ParseSQL(`SELECT ... FROM ...`, cat)
//	res, err := cote.Optimize(q, cote.OptimizeOptions{Level: cote.LevelHigh})
//	est, err := cote.EstimatePlans(q, cote.EstimateOptions{Level: cote.LevelHigh})
//
// To convert plan counts into a wall-clock prediction, calibrate a TimeModel
// once per machine and configuration on a training workload (see Calibrate)
// and pass it in EstimateOptions.Model, exactly as the paper fits its Ct
// constants by regression.
package cote

import (
	"context"

	"cote/internal/calib"
	"cote/internal/catalog"
	"cote/internal/core"
	"cote/internal/cost"
	"cote/internal/fingerprint"
	"cote/internal/opt"
	"cote/internal/optctx"
	"cote/internal/props"
	"cote/internal/query"
	"cote/internal/resource"
	"cote/internal/sqlparser"
	"cote/internal/workload"
)

// Catalog is a database schema with statistics: tables, columns, indexes,
// physical partitionings, and foreign keys.
type Catalog = catalog.Catalog

// CatalogBuilder assembles a Catalog.
type CatalogBuilder = catalog.Builder

// NewCatalogBuilder starts building a schema with the given name.
func NewCatalogBuilder(name string) *CatalogBuilder { return catalog.NewBuilder(name) }

// TPCHCatalog returns the TPC-H schema at the given scale factor,
// partitioned across nodes when nodes > 1.
func TPCHCatalog(scale float64, nodes int) *Catalog { return catalog.TPCH(scale, nodes) }

// Warehouse1Catalog returns the retail-warehouse schema behind the real1
// and random workloads.
func Warehouse1Catalog(nodes int) *Catalog { return catalog.Warehouse1(nodes) }

// Warehouse2Catalog returns the financial-warehouse schema behind the real2
// workload.
func Warehouse2Catalog(nodes int) *Catalog { return catalog.Warehouse2(nodes) }

// Query is a parsed and normalized query: one block plus nested blocks for
// views and subqueries.
type Query = query.Block

// QueryBuilder assembles a Query programmatically, as an alternative to
// ParseSQL.
type QueryBuilder = query.Builder

// NewQueryBuilder starts building a query named name over the catalog.
func NewQueryBuilder(name string, cat *Catalog) *QueryBuilder {
	return query.NewBuilder(name, cat)
}

// ParseSQL compiles a SQL statement (SELECT with inner/left-outer joins,
// derived tables, IN-subqueries, GROUP BY, ORDER BY) against the catalog.
func ParseSQL(sql string, cat *Catalog) (*Query, error) { return sqlparser.Parse(sql, cat) }

// MustParseSQL is ParseSQL for statically known-good SQL; it panics on
// error.
func MustParseSQL(sql string, cat *Catalog) *Query { return sqlparser.MustParse(sql, cat) }

// Level is an optimization level: the greedy low level or a
// dynamic-programming level with knob presets.
type Level = opt.Level

// Optimization levels, from cheapest to most thorough.
const (
	LevelLow            = opt.LevelLow
	LevelMediumLeftDeep = opt.LevelMediumLeftDeep
	LevelMediumZigZag   = opt.LevelMediumZigZag
	LevelHighInner2     = opt.LevelHighInner2
	LevelHigh           = opt.LevelHigh
)

// Config selects the execution architecture the optimizer costs for.
type Config = cost.Config

// Serial and Parallel4 are the two configurations of the paper's
// experiments: a serial database and a 4-logical-node shared-nothing
// parallel one.
var (
	Serial    = cost.Serial
	Parallel4 = cost.Parallel4
)

// OptimizeOptions configures real query optimization.
type OptimizeOptions = opt.Options

// OptimizeResult is the outcome of a real optimization: the chosen plan,
// per-block MEMO state, counters and timings.
type OptimizeResult = opt.Result

// Optimize compiles the query for real: enumerates joins, generates and
// prunes plans, and returns the best plan with full instrumentation.
func Optimize(q *Query, opts OptimizeOptions) (*OptimizeResult, error) {
	return opt.Optimize(q, opts)
}

// OptimizeCtx is Optimize bounded by a context: the compilation stops
// cooperatively (promptly, at enumeration granularity) when ctx expires.
func OptimizeCtx(ctx context.Context, q *Query, opts OptimizeOptions) (*OptimizeResult, error) {
	return opt.OptimizeCtx(ctx, q, opts)
}

// ExecContext is a per-optimization execution context: cancellation, a
// generated-plan budget, a live progress meter (generated plans over the
// COTE-predicted total — the paper's Section 6 progress application) and
// per-stage observability hooks.
type ExecContext = optctx.Ctx

// ExecHooks observe a compilation driven under an ExecContext.
type ExecHooks = optctx.Hooks

// NewExecContext returns an execution context observing ctx. Arm it with
// SetPredictedPlans/SetPlanBudget and hooks via WithHooks, then pass it to
// OptimizeWith.
func NewExecContext(ctx context.Context) *ExecContext { return optctx.New(ctx) }

// ErrBudgetExceeded reports that a compilation overran its generated-plan
// budget and was aborted.
var ErrBudgetExceeded = optctx.ErrBudgetExceeded

// ErrMemBudgetExceeded reports that a compilation's measured optimizer
// memory crossed its byte budget (ExecContext.SetMemBudget) and was aborted.
var ErrMemBudgetExceeded = optctx.ErrMemBudgetExceeded

// ResourceSnapshot is a point-in-time view of one compilation's measured
// memory accounting: current and peak bytes, total and durable (the
// deterministic MEMO content the memory model predicts), per kind.
type ResourceSnapshot = resource.Snapshot

// OptimizeWith compiles under an execution context. A nil ExecContext
// behaves exactly like Optimize.
func OptimizeWith(oc *ExecContext, q *Query, opts OptimizeOptions) (*OptimizeResult, error) {
	return opt.OptimizeWith(oc, q, opts)
}

// EstimateOptions configures a compilation-time estimation.
type EstimateOptions = core.Options

// Estimate is the estimation outcome: per-method plan counts, enumerated
// joins, the estimator's own (small) wall time, and — given a model — the
// compilation-time and optimizer-memory predictions.
type Estimate = core.Estimate

// PlanCounts holds generated-plan counts per join method.
type PlanCounts = core.PlanCounts

// ListMode selects how the estimator maintains multiple property types
// (Section 3.4): separate per-type lists (the paper's choice) or explicit
// compound vectors.
type ListMode = core.ListMode

// List modes.
const (
	SeparateLists = core.SeparateLists
	CompoundLists = core.CompoundLists
)

// EstimatePlans runs the paper's plan-estimate mode: the join enumerator
// runs with plan generation bypassed, maintaining interesting-property
// lists to count the plans each join would generate.
func EstimatePlans(q *Query, opts EstimateOptions) (*Estimate, error) {
	return core.EstimatePlans(q, opts)
}

// EstimatePlansCtx is EstimatePlans bounded by a context.
func EstimatePlansCtx(ctx context.Context, q *Query, opts EstimateOptions) (*Estimate, error) {
	return core.EstimatePlansCtx(ctx, q, opts)
}

// Fingerprint is a canonical 128-bit structural hash of a query: invariant
// under table aliasing, predicate literal values and join-clause order,
// distinct across join-graph, knob and interesting-property changes.
type Fingerprint = fingerprint.FP

// FingerprintOf returns the structural fingerprint of q.
func FingerprintOf(q *Query) Fingerprint { return fingerprint.Of(q) }

// CanonicalQuery rebuilds q under its canonical table numbering and
// returns it with its fingerprint. Structurally equal queries rebuild into
// byte-identical canonical queries, which is what makes fingerprint
// equality imply identical plan counts.
func CanonicalQuery(q *Query) (*Query, Fingerprint, error) { return fingerprint.Canonical(q) }

// FingerprintCache memoizes estimates across structurally identical
// queries: a hit skips join enumeration entirely and re-applies only the
// linear time model. It is bounded (LRU) and safe for concurrent use.
type FingerprintCache = core.FingerprintCache

// NewFingerprintCache returns an empty fingerprint cache holding at most
// capacity estimates (1024 when capacity <= 0).
func NewFingerprintCache(capacity int) *FingerprintCache {
	return core.NewFingerprintCache(capacity)
}

// ActualPlanCounts extracts the generated-plan counts from a real
// optimization, for estimate-versus-actual comparisons.
func ActualPlanCounts(res *OptimizeResult) PlanCounts {
	return core.CountsFrom(res.TotalCounters())
}

// TimeModel converts plan counts to time: T = Tinst * (sum Ct*Pt + C0).
type TimeModel = core.TimeModel

// TrainingPoint pairs measured plan counts with a measured compilation
// time.
type TrainingPoint = core.TrainingPoint

// Calibrate fits the per-join-method constants Ct by non-negative least
// squares on training observations. Refit per machine and configuration, as
// the paper refits per DB2 release.
func Calibrate(training []TrainingPoint) (*TimeModel, error) { return core.Calibrate(training) }

// TrainingPointFrom builds a training point from one real optimization,
// including the per-method timing breakdown that keeps calibration well
// conditioned.
func TrainingPointFrom(res *OptimizeResult) TrainingPoint {
	return core.TrainingPointFrom(res.TotalCounters(), res.Elapsed)
}

// JoinCountModel is the prior-work baseline time model: T scales with the
// Ono-Lohman join count instead of the generated-plan counts.
type JoinCountModel = core.JoinCountModel

// MemModel converts the estimator's structural counts (MEMO entries, plans,
// property bytes) into a predicted peak of durable optimizer memory — the
// memory-side analogue of TimeModel (Section 6's optimizer-resource
// estimation).
type MemModel = core.MemModel

// DefaultMemModel returns the uncalibrated structural memory model built
// from the MEMO's real per-entry/per-plan footprints. It over-predicts
// (safe for admission) until CalibrateMemory refines it.
func DefaultMemModel() *MemModel { return core.DefaultMemModel() }

// MemPoint pairs one real compilation's structural counts with its measured
// durable peak bytes — the training unit of memory calibration.
type MemPoint = core.MemPoint

// MemPointFrom builds a memory training point from an estimate and the
// measured durable peak of the corresponding real compilation.
func MemPointFrom(est *Estimate, peakBytes int64) MemPoint {
	return core.MemPointFrom(est, peakBytes)
}

// CalibrateMemory fits the memory model's coefficients by non-negative
// least squares on measured peak observations, exactly as Calibrate fits
// the time model's Ct constants.
func CalibrateMemory(points []MemPoint) (*MemModel, error) {
	return core.CalibrateMemory(points)
}

// EstimateMemory predicts the peak durable optimizer memory of a
// compilation from its estimate's structural counts under the model (nil
// model selects DefaultMemModel).
func EstimateMemory(est *Estimate, m *MemModel) int64 { return core.EstimateMemory(est, m) }

// MemModelProvider supplies the current memory model on every read; a
// ModelRegistry is one.
type MemModelProvider = core.MemModelProvider

// CompileObservation pairs one real compilation's plan counts and measured
// wall time with the prediction that was made for it — the feedback unit of
// online calibration.
type CompileObservation = core.CompileObservation

// CompileObserver receives one CompileObservation per real compilation; a
// Calibrator is one (set it as MetaOptimizer.Observer to close the loop).
type CompileObserver = core.CompileObserver

// ModelProvider supplies the current time model on every read; a
// ModelRegistry is one (set it as MetaOptimizer.Models or
// EstimateOptions.Models so calibration swaps apply immediately).
type ModelProvider = core.ModelProvider

// ModelVersion is one immutable, monotonically numbered model snapshot in a
// ModelRegistry, with its provenance.
type ModelVersion = calib.ModelVersion

// ModelRegistry is a versioned TimeModel store: reads are a single atomic
// load, installs advance a monotonic version, history is retained for
// rollback, and the whole registry round-trips to JSON on disk.
type ModelRegistry = calib.Registry

// NewModelRegistry returns an empty registry retaining at most retain
// versions (16 when retain <= 0).
func NewModelRegistry(retain int) *ModelRegistry { return calib.NewRegistry(retain) }

// LoadModelRegistry loads a registry persisted by its Save method. A
// missing file yields an empty registry. hostTinst (this host's measured
// per-instruction time, see MeasureTinst) rescales the persisted models to
// this machine's speed; zero keeps them as saved.
func LoadModelRegistry(path string, retain int, hostTinst float64) (*ModelRegistry, error) {
	return calib.Load(path, retain, hostTinst)
}

// MeasureTinst micro-benchmarks this host's effective seconds-per-
// instruction, the Tinst scale factor persisted registries are normalized
// by.
func MeasureTinst() float64 { return calib.MeasureTinst() }

// CalibratorConfig parameterizes the online calibration loop; the zero
// value enables automatic recalibration with the package defaults.
type CalibratorConfig = calib.Config

// Calibrator closes the calibration feedback loop: it observes real
// compilations, tracks prediction drift, and refits the model over the
// observation window into its registry when drift crosses the threshold.
type Calibrator = calib.Calibrator

// NewCalibrator returns a calibrator feeding reg.
func NewCalibrator(reg *ModelRegistry, cfg CalibratorConfig) *Calibrator {
	return calib.NewCalibrator(reg, cfg)
}

// MetaOptimizer is the paper's Figure 1 application: compile at the low
// level, estimate the high level's compilation time, and recompile only
// when the estimate is worth it.
type MetaOptimizer = core.MOP

// MOPDecision records what the meta-optimizer decided and why.
type MOPDecision = core.MOPDecision

// MultiLevelEstimate holds per-level plan counts from one enumeration pass.
type MultiLevelEstimate = core.MultiLevelEstimate

// EstimateLevels estimates several optimization levels in a single
// enumeration pass at the top level (the paper's Section 6.2 piggyback
// extension). Every requested level's search space must be subsumed by top.
func EstimateLevels(q *Query, top Level, levels []Level, opts EstimateOptions) (*MultiLevelEstimate, error) {
	return core.EstimateLevels(q, top, levels, opts)
}

// StatementCache is the Section 1.2 baseline: remember the compilation
// time of structurally identical statements. Exact repeats hit; the ad-hoc
// variations the estimator targets miss. It is bounded (LRU) and safe for
// concurrent use.
type StatementCache = core.StatementCache

// NewStatementCache returns an empty statement cache with the default
// capacity (1024 statements).
func NewStatementCache() *StatementCache { return core.NewStatementCache() }

// NewStatementCacheCap returns an empty statement cache evicting beyond
// capacity entries.
func NewStatementCacheCap(capacity int) *StatementCache {
	return core.NewStatementCacheCap(capacity)
}

// JoinCountEstimate is the prior-work baseline: the Ono-Lohman join count.
type JoinCountEstimate = core.JoinCountEstimate

// CountJoins counts the distinct binary joins of a query by running the
// enumerator with no hooks — the baseline metric the paper improves on.
func CountJoins(q *Query, opts EstimateOptions) (*JoinCountEstimate, error) {
	return core.CountJoins(q, opts)
}

// ClosedFormJoins returns the closed-form join count for "linear" or
// "star" queries of n tables; other shapes have none (the general problem
// is #P-complete).
func ClosedFormJoins(shape string, n int) (int, error) { return core.ClosedFormJoins(shape, n) }

// JoinMethod identifies NLJN, MGJN or HSJN.
type JoinMethod = props.JoinMethod

// Join methods.
const (
	NLJN           = props.NLJN
	MGJN           = props.MGJN
	HSJN           = props.HSJN
	NumJoinMethods = props.NumJoinMethods
)

// Workload is a named collection of queries over one catalog.
type Workload = workload.Workload

// LinearWorkload returns the linear synthetic workload. For every workload
// constructor, nodes selects the serial (1) or parallel (4) variant — the
// paper's _s/_p suffixes.
func LinearWorkload(nodes int) *Workload { return workload.Linear(nodes) }

// StarWorkload returns the star synthetic workload.
func StarWorkload(nodes int) *Workload { return workload.Star(nodes) }

// RandomWorkload returns the seeded random workload over the real1 schema.
func RandomWorkload(seed int64, count, maxTables, nodes int) *Workload {
	return workload.Random(seed, count, maxTables, nodes)
}

// Real1Workload returns the first customer workload (8 queries).
func Real1Workload(nodes int) *Workload { return workload.Real1(nodes) }

// Real2Workload returns the second customer workload (17 queries).
func Real2Workload(nodes int) *Workload { return workload.Real2(nodes) }

// TPCHWorkload returns the seven longest-compiling TPC-H queries.
func TPCHWorkload(nodes int) *Workload { return workload.TPCH(nodes) }
