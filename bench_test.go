// Top-level benchmarks: one per table/figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment and reports the paper's
// headline quantity as a custom metric (overhead percentage, mean relative
// error, pruning fraction, ...), so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. cmd/cotebench prints the same
// experiments as full per-query tables.
package cote_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"cote/internal/core"
	"cote/internal/experiments"
	qfp "cote/internal/fingerprint"
	"cote/internal/opt"
	"cote/internal/props"
	"cote/internal/service"
	"cote/internal/workload"
)

// workloads and models are cached across benchmarks: calibration compiles
// three workloads and must not be charged to every figure.
var (
	wlOnce sync.Once
	wls    map[string]*workload.Workload
	models map[string]*core.TimeModel
)

func setup(b *testing.B) {
	b.Helper()
	wlOnce.Do(func() {
		wls = map[string]*workload.Workload{
			"linear_s": workload.Linear(1), "linear_p": workload.Linear(4),
			"star_s": workload.Star(1), "star_p": workload.Star(4),
			"random_s": workload.Random(42, 12, 10, 1), "random_p": workload.Random(42, 12, 10, 4),
			"real1_s": workload.Real1(1), "real1_p": workload.Real1(4),
			"real2_s": workload.Real2(1), "real2_p": workload.Real2(4),
			"tpch_s": workload.TPCH(1), "tpch_p": workload.TPCH(4),
			"clique_s": workload.Clique(1), "clique_p": workload.Clique(4),
		}
		models = map[string]*core.TimeModel{}
		for _, v := range []string{"s", "p"} {
			m, err := experiments.TrainModel([]*workload.Workload{
				wls["linear_"+v], wls["star_"+v], wls["random_"+v],
			})
			if err != nil {
				panic(err)
			}
			models[v] = m
		}
	})
}

// --- Figure 2 ---

func BenchmarkFig2_Breakdown(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		row, err := experiments.Fig2Breakdown(wls["real2_s"])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.MGJN, "MGJN%")
		b.ReportMetric(row.NLJN, "NLJN%")
		b.ReportMetric(row.HSJN, "HSJN%")
		b.ReportMetric(row.PlanSaving, "save%")
		b.ReportMetric(row.Other, "other%")
	}
}

// --- Figure 4 ---

func benchOverhead(b *testing.B, wl string) {
	setup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4Overhead(wls[wl])
		if err != nil {
			b.Fatal(err)
		}
		var mean float64
		for _, r := range rows {
			mean += r.Pct
		}
		b.ReportMetric(mean/float64(len(rows)), "overhead%")
	}
}

func BenchmarkFig4a_OverheadLinearSerial(b *testing.B)  { benchOverhead(b, "linear_s") }
func BenchmarkFig4b_OverheadReal2Serial(b *testing.B)   { benchOverhead(b, "real2_s") }
func BenchmarkFig4c_OverheadReal1Parallel(b *testing.B) { benchOverhead(b, "real1_p") }

// --- Figure 5 ---

func benchPlans(b *testing.B, wl string) {
	setup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5Plans(wls[wl])
		if err != nil {
			b.Fatal(err)
		}
		errs := experiments.PlanErrors(rows)
		b.ReportMetric(errs[props.MGJN].Mean*100, "MGJNerr%")
		b.ReportMetric(errs[props.NLJN].Mean*100, "NLJNerr%")
		b.ReportMetric(errs[props.HSJN].Mean*100, "HSJNerr%")
	}
}

func BenchmarkFig5_StarSerialPlans(b *testing.B)     { benchPlans(b, "star_s") }
func BenchmarkFig5_RandomParallelPlans(b *testing.B) { benchPlans(b, "random_p") }
func BenchmarkFig5_Real1ParallelPlans(b *testing.B)  { benchPlans(b, "real1_p") }

// --- Figure 6 ---

func benchTimes(b *testing.B, wl string) {
	setup(b)
	model := models[wl[len(wl)-1:]]
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6Times(wls[wl], model)
		if err != nil {
			b.Fatal(err)
		}
		s := experiments.TimeErrors(rows)
		b.ReportMetric(s.Mean*100, "meanerr%")
		b.ReportMetric(s.Max*100, "maxerr%")
	}
}

func BenchmarkFig6a_TimeStarSerial(b *testing.B)     { benchTimes(b, "star_s") }
func BenchmarkFig6b_TimeReal1Serial(b *testing.B)    { benchTimes(b, "real1_s") }
func BenchmarkFig6c_TimeReal2Serial(b *testing.B)    { benchTimes(b, "real2_s") }
func BenchmarkFig6d_TimeTPCHParallel(b *testing.B)   { benchTimes(b, "tpch_p") }
func BenchmarkFig6e_TimeRandomParallel(b *testing.B) { benchTimes(b, "random_p") }
func BenchmarkFig6f_TimeReal1Parallel(b *testing.B)  { benchTimes(b, "real1_p") }

// --- Section 4: Ct ratios ---

func BenchmarkCtRatios(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		r := models["s"].Ratio()
		b.ReportMetric(r[props.MGJN], "Cm")
		b.ReportMetric(r[props.NLJN], "Cn")
		b.ReportMetric(r[props.HSJN], "Ch")
	}
}

// --- Section 5.3: join-count baseline ---

func BenchmarkJoinCountBaseline(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.JoinBaseline(wls["star_s"], models["s"])
		if err != nil {
			b.Fatal(err)
		}
		var pe, je float64
		for _, r := range rows {
			pe += r.PlanErr
			je += r.JoinErr
		}
		n := float64(len(rows))
		b.ReportMetric(pe/n*100, "planerr%")
		b.ReportMetric(je/n*100, "joinerr%")
		b.ReportMetric(je/pe, "worse-x")
	}
}

// --- Section 6.1: pilot pass ---

func BenchmarkPilotPassPruning(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.PilotPass(wls["real1_s"])
		if err != nil {
			b.Fatal(err)
		}
		var frac float64
		for _, r := range rows {
			frac += r.PrunedFrac
		}
		b.ReportMetric(frac/float64(len(rows))*100, "pruned%")
	}
}

// --- Section 6.2: memory ---

func BenchmarkMemoryEstimation(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MemoryEstimates(wls["star_s"])
		if err != nil {
			b.Fatal(err)
		}
		var pred, act float64
		for _, r := range rows {
			pred += float64(r.PredictedBytes)
			act += float64(r.ActualBytes)
		}
		b.ReportMetric(pred/act, "pred/act")
	}
}

// --- Section 6.2: piggyback ---

func BenchmarkPiggyback(b *testing.B) {
	setup(b)
	levels := []opt.Level{opt.LevelMediumLeftDeep, opt.LevelHighInner2, opt.LevelHigh}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Piggyback(wls["real1_s"], levels); err != nil {
			b.Fatal(err)
		}
	}
}

// --- DESIGN.md section 5: ablations ---

func BenchmarkAblations(b *testing.B) {
	setup(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablations(wls["real1_p"])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MeanErr*100, "sep-err%")
		b.ReportMetric(rows[1].MeanErr*100, "cmp-err%")
		b.ReportMetric(rows[2].MeanErr*100, "every-err%")
	}
}

// --- Micro benchmarks: the raw optimize-vs-estimate asymmetry ---

func BenchmarkOptimizeReal2Headline(b *testing.B) {
	setup(b)
	q := wls["real2_s"].Queries[7] // the 14-table, 3-view query
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOptimizeParallel compiles the headline query with the parallel DP
// driver at a fixed worker count. Speedup over the serial benchmark above is
// the tentpole metric; on single-core machines these mainly measure that the
// parallel machinery's overhead stays negligible.
func benchOptimizeParallel(b *testing.B, workers int) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level, Parallelism: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeReal2HeadlineP2(b *testing.B) { benchOptimizeParallel(b, 2) }
func BenchmarkOptimizeReal2HeadlineP4(b *testing.B) { benchOptimizeParallel(b, 4) }

// BenchmarkOptimizeParallelSpeedup reports the serial/parallel wall-clock
// ratio directly as a "speedup-x" metric, measuring both modes inside one
// benchmark run so the comparison shares its machine state.
func BenchmarkOptimizeParallelSpeedup(b *testing.B) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	workers := runtime.GOMAXPROCS(0)
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level}); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)
		t0 = time.Now()
		if _, err := opt.Optimize(q.Block, opt.Options{Level: experiments.Level, Parallelism: workers}); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(t0)
	}
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup-x")
		b.ReportMetric(float64(workers), "workers")
	}
}

func BenchmarkEstimateReal2Headline(b *testing.B) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	b.ReportAllocs()
	b.ResetTimer()
	var est *core.Estimate
	for i := 0; i < b.N; i++ {
		var err error
		if est, err = core.EstimatePlans(q.Block, core.Options{Level: experiments.Level}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// The estimate path's own measured durable bytes — deterministic, so the
	// metric is stable across runs and machines.
	b.ReportMetric(float64(est.MeasuredPeakBytes), "peak-bytes")
}

// benchEstimateParallel estimates the headline query with the parallel
// counting pass at a fixed degree. Speedup over BenchmarkEstimateReal2Headline
// is the tentpole metric; on single-core machines these mainly measure that
// the parallel machinery's overhead stays negligible.
func benchEstimateParallel(b *testing.B, workers int) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimatePlans(q.Block, core.Options{Level: experiments.Level, Parallelism: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateReal2HeadlineP2(b *testing.B) { benchEstimateParallel(b, 2) }
func BenchmarkEstimateReal2HeadlineP4(b *testing.B) { benchEstimateParallel(b, 4) }

// BenchmarkEstimateParallelSpeedup reports the serial/parallel estimation
// wall-clock ratio directly, both modes measured inside one benchmark run so
// the comparison shares its machine state.
func BenchmarkEstimateParallelSpeedup(b *testing.B) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	workers := runtime.GOMAXPROCS(0)
	var serial, parallel time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := core.EstimatePlans(q.Block, core.Options{Level: experiments.Level}); err != nil {
			b.Fatal(err)
		}
		serial += time.Since(t0)
		t0 = time.Now()
		if _, err := core.EstimatePlans(q.Block, core.Options{Level: experiments.Level, Parallelism: workers}); err != nil {
			b.Fatal(err)
		}
		parallel += time.Since(t0)
	}
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "speedup-x")
		b.ReportMetric(float64(workers), "workers")
	}
}

// benchEstimateHigh estimates a dense synthetic query at the unrestricted
// bushy level — the largest counting workload per MEMO entry, so it is the
// benchmark most sensitive to the open-addressed index and the slab
// allocator.
func benchEstimateHigh(b *testing.B, wl string, qi int) {
	setup(b)
	q := wls[wl].Queries[qi]
	b.ReportAllocs()
	b.ResetTimer()
	var est *core.Estimate
	for i := 0; i < b.N; i++ {
		var err error
		if est, err = core.EstimatePlans(q.Block, core.Options{Level: opt.LevelHigh}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(est.MeasuredPeakBytes), "peak-bytes")
}

func BenchmarkEstimateCliqueHigh(b *testing.B) { benchEstimateHigh(b, "clique_s", 3) } // 8 tables, all pairs joined
func BenchmarkEstimateStarHigh(b *testing.B)   { benchEstimateHigh(b, "star_s", 14) }  // 10 tables, 5 preds/edge

// --- Cross-query fingerprint memoization ---

// BenchmarkFingerprintReal2Headline prices the canonicalize-and-hash step by
// itself: the fixed cost every fingerprint-cache lookup pays before it can
// skip enumeration, on the same query the cold headline benchmark estimates.
func BenchmarkFingerprintReal2Headline(b *testing.B) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp := qfp.Of(q.Block); fp.IsZero() {
			b.Fatal("zero fingerprint")
		}
	}
}

// BenchmarkEstimateWarmReal2Headline is the warm counterpart of
// BenchmarkEstimateReal2Headline: the identical estimate served from the
// fingerprint cache, enumeration skipped. The memoization layer's acceptance
// bar is >= 10x under the cold benchmark's ns/op.
func BenchmarkEstimateWarmReal2Headline(b *testing.B) {
	setup(b)
	q := wls["real2_s"].Queries[7]
	cache := core.NewFingerprintCache(16)
	if _, _, err := cache.EstimatePlans(q.Block, core.Options{Level: experiments.Level}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := cache.EstimatePlans(q.Block, core.Options{Level: experiments.Level})
		if err != nil {
			b.Fatal(err)
		}
		if !hit {
			b.Fatal("warm lookup missed")
		}
	}
	b.StopTimer()
	hits, misses, _, _ := cache.Stats()
	b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
}

// BenchmarkServiceEstimateWarm drives the full service path — parse,
// fingerprint, cache — for a repeated six-way TPC-H join. Everything after
// the first request is a hit, so this is the end-to-end latency of a repeat
// estimate including SQL parsing.
func BenchmarkServiceEstimateWarm(b *testing.B) {
	srv := service.New(service.Config{Workers: 2, CacheCapacity: 64})
	ctx := context.Background()
	req := service.EstimateRequest{
		Catalog: "tpch",
		SQL: `SELECT n_name FROM customer, orders, lineitem, supplier, nation, region
		      WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey
		        AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
		        AND c_mktsegment = 'BUILDING' ORDER BY n_name`,
	}
	if _, err := srv.Estimate(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := srv.Estimate(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("repeat request missed the cache")
		}
	}
	b.StopTimer()
	m := srv.Metrics()
	hits, misses := m.CacheHits.Value(), m.CacheMisses.Value()
	b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
}

// batchStatements builds n spellings over two distinct join structures, each
// with a fresh literal, so a batch dedupes them to two enumerations at most.
func batchStatements(n int) []string {
	stmts := make([]string, n)
	for i := range stmts {
		if i%2 == 0 {
			stmts[i] = fmt.Sprintf(`SELECT n_name FROM customer, orders, lineitem, supplier, nation, region
			 WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND l_suppkey = s_suppkey
			   AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey
			   AND c_mktsegment = 'SEG%d'`, i)
		} else {
			stmts[i] = fmt.Sprintf(`SELECT c_name FROM customer, orders, lineitem
			 WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey
			   AND o_orderpriority = 'P%d'`, i)
		}
	}
	return stmts
}

// BenchmarkServiceEstimateBatch submits 16-statement batches of the two
// structures above. In-batch dedup plus the fingerprint cache mean a
// steady-state batch parses 16 statements but enumerates none; dedup%
// reports the in-batch share answered by a sibling statement.
func BenchmarkServiceEstimateBatch(b *testing.B) {
	srv := service.New(service.Config{Workers: 2, CacheCapacity: 64})
	ctx := context.Background()
	stmts := batchStatements(16)
	b.ReportAllocs()
	b.ResetTimer()
	var deduped, total int64
	for i := 0; i < b.N; i++ {
		resp, err := srv.EstimateBatch(ctx, service.EstimateBatchRequest{Catalog: "tpch", Statements: stmts})
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range resp.Items {
			if it.Error != "" {
				b.Fatal(it.Error)
			}
		}
		deduped += int64(resp.Deduped)
		total += int64(len(stmts))
	}
	if total > 0 {
		b.ReportMetric(100*float64(deduped)/float64(total), "dedup%")
	}
}
